// Package agingfp_test holds the benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation (run them with
// `go test -bench=. -benchmem`), plus micro-benchmarks for the hot
// substrates. The Table-I benchmarks here use the small fabric tiers so a
// full -bench pass stays laptop-sized; `cmd/experiments` regenerates the
// full tables.
package agingfp_test

import (
	"context"
	"math/rand"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/core"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/lp"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

// benchSpec fetches a Table-I spec or fails the benchmark.
func benchSpec(b *testing.B, name string) bench.Spec {
	b.Helper()
	s, ok := bench.SpecByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	return s
}

// --- E1: Table I -----------------------------------------------------

// BenchmarkTableIRow4x4 regenerates the first Table-I row (C4, 4x4
// fabric: B1/B10/B19 across the three usage bands), Freeze and Rotate.
func BenchmarkTableIRow4x4(b *testing.B) {
	cfg := bench.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"B1", "B10", "B19"} {
			r, err := bench.Run(context.Background(), benchSpec(b, name), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if r.RotateCPD > r.OrigCPD+1e-9 {
				b.Fatalf("%s: CPD regressed", name)
			}
		}
	}
}

// BenchmarkTableIRowC8 regenerates the C8/4x4 row (B4/B13/B22).
func BenchmarkTableIRowC8(b *testing.B) {
	cfg := bench.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"B4", "B13", "B22"} {
			if _, err := bench.Run(context.Background(), benchSpec(b, name), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFreezeVsRotate isolates the E6 ablation on one benchmark with
// many contexts (where rotation has room to matter).
func BenchmarkFreezeVsRotate(b *testing.B) {
	spec := benchSpec(b, "B7")
	d, err := bench.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, ro, err := core.RemapBoth(context.Background(), d, m0, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if ro.NewMaxStress > fr.NewMaxStress+1e-9 {
			b.Fatal("rotate worse than freeze")
		}
	}
}

// --- E2: Fig. 5 -------------------------------------------------------

// BenchmarkFig5Series regenerates one Fig. 5 group (C4F4) and formats the
// series.
func BenchmarkFig5Series(b *testing.B) {
	cfg := bench.DefaultConfig()
	specs := []bench.Spec{benchSpec(b, "B1"), benchSpec(b, "B10"), benchSpec(b, "B19")}
	for i := 0; i < b.N; i++ {
		rs, err := bench.RunSuite(context.Background(), specs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if s := bench.FormatFig5(rs); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- E3: Fig. 2(b) ----------------------------------------------------

// BenchmarkFig2b regenerates the Vth-shift trajectory comparison.
func BenchmarkFig2b(b *testing.B) {
	spec := benchSpec(b, "B13")
	cfg := bench.DefaultConfig()
	for i := 0; i < b.N; i++ {
		f, err := bench.RunFig2b(context.Background(), spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if f.RemappedMTTF <= f.OrigMTTF {
			b.Fatal("re-mapping did not extend MTTF")
		}
	}
}

// --- E4: scaling ------------------------------------------------------

// BenchmarkScalingTwoStep measures the production two-step solve on a
// fixed mid-size instance.
func BenchmarkScalingTwoStep(b *testing.B) {
	pts := []int{48}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunScaling(context.Background(), pts, 800, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: greedy ablation ----------------------------------------------

// BenchmarkGreedyVsMILP runs the LPT-vs-MILP comparison.
func BenchmarkGreedyVsMILP(b *testing.B) {
	spec := benchSpec(b, "B10")
	cfg := bench.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := bench.RunGreedy(context.Background(), spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if g.MILPCPD > g.OrigCPD+1e-9 {
			b.Fatal("MILP broke timing")
		}
	}
}

// --- substrate micro-benchmarks ----------------------------------------

// BenchmarkSimplexAssignment solves a 24x24 assignment LP.
func BenchmarkSimplexAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	p := lp.NewProblem()
	vars := make([][]int, n)
	for i := range vars {
		vars[i] = make([]int, n)
		for j := range vars[i] {
			vars[i][j] = p.AddVar(rng.Float64(), 0, 1)
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	for i := 0; i < n; i++ {
		p.MustAddRow(lp.EQ, 1, vars[i], ones)
		col := make([]int, n)
		for k := 0; k < n; k++ {
			col[k] = vars[k][i]
		}
		p.MustAddRow(lp.EQ, 1, col, ones)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(context.Background(), p, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve: %v %v", err, sol.Status)
		}
	}
}

// BenchmarkWarmVsColdSimplex replays the Step-1 probe workload — the
// full-design re-binding LP solved at a descending sequence of stress
// budgets (only the budget-row RHS changes between probes) — once from
// scratch at every budget and once reusing the previous probe's basis.
// The warm arm must reach the same objective at every budget; the
// speedup between the two sub-benchmarks is the payoff of basis reuse.
func BenchmarkWarmVsColdSimplex(b *testing.B) {
	spec := benchSpec(b, "B10")
	d, err := bench.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	s0 := arch.ComputeStress(d, m0)
	opts := core.DefaultOptions()
	base := s0.Max()
	var probes []*lp.Problem
	for k := 0; k < 6; k++ {
		target := base * (1 - 0.01*float64(k))
		rng := rand.New(rand.NewSource(11)) // same seed: identical candidate sets, so identical LP structure
		probes = append(probes, core.BPLP(core.BuildFullProblemForTest(d, m0, target, opts, rng)))
	}
	want := make([]float64, len(probes))
	for k, p := range probes {
		sol, err := lp.Solve(context.Background(), p, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("probe %d cold solve: %v %v", k, err, sol.Status)
		}
		want[k] = sol.Obj
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k, p := range probes {
				sol, err := lp.Solve(context.Background(), p, lp.Options{})
				if err != nil || sol.Status != lp.Optimal {
					b.Fatalf("probe %d: %v %v", k, err, sol.Status)
				}
			}
		}
	})
	// The profiled arm measures the kernel profiler's overhead against
	// "cold" directly: same probes, profiling armed. The gap between the
	// two is the cost of the sampled phase clocks (<2% is the budget; see
	// lp.TestKernelProfilerOverhead for the hard gate).
	b.Run("cold-profiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k, p := range probes {
				sol, err := lp.Solve(context.Background(), p, lp.Options{Profile: true})
				if err != nil || sol.Status != lp.Optimal {
					b.Fatalf("probe %d: %v %v", k, err, sol.Status)
				}
				if sol.Profile == nil {
					b.Fatal("profiled solve returned no profile")
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var basis *lp.Basis
			for k, p := range probes {
				sol, err := lp.Solve(context.Background(), p, lp.Options{WarmStart: basis})
				if err != nil || sol.Status != lp.Optimal {
					b.Fatalf("probe %d: %v %v", k, err, sol.Status)
				}
				if diff := sol.Obj - want[k]; diff > 1e-6 || diff < -1e-6 {
					b.Fatalf("probe %d: warm objective %g != cold %g", k, sol.Obj, want[k])
				}
				basis = sol.Basis
			}
		}
	})
}

// BenchmarkPathEnumeration measures near-critical path extraction.
func BenchmarkPathEnumeration(b *testing.B) {
	spec := benchSpec(b, "B14")
	d, err := bench.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	m, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	res := timing.Analyze(d, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := timing.EnumeratePaths(d, m, res, timing.DefaultEnumerateOptions())
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkSTA measures full-design arrival-time analysis.
func BenchmarkSTA(b *testing.B) {
	spec := benchSpec(b, "B17")
	d, err := bench.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	m, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := timing.Analyze(d, m); res.CPD <= 0 {
			b.Fatal("bad CPD")
		}
	}
}

// BenchmarkThermalSolve measures one 16x16 steady-state solve.
func BenchmarkThermalSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	power := make([][]float64, 16)
	for y := range power {
		power[y] = make([]float64, 16)
		for x := range power[y] {
			power[y][x] = rng.Float64()
		}
	}
	cfg := thermal.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.Solve(power, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacer measures the aging-unaware baseline placement.
func BenchmarkPlacer(b *testing.B) {
	d, err := hls.BuildDesign("fir32", dfg.FIR(32), arch.Fabric{W: 8, H: 8}, hls.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(d, place.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyLevel measures the LPT leveler.
func BenchmarkGreedyLevel(b *testing.B) {
	spec := benchSpec(b, "B17")
	d, err := bench.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.GreedyLevel(d, nil)
		if len(m) != d.NumOps() {
			b.Fatal("bad mapping")
		}
	}
}

// BenchmarkMTTFEvaluation measures the stress->thermal->NBTI pipeline.
func BenchmarkMTTFEvaluation(b *testing.B) {
	spec := benchSpec(b, "B13")
	d, err := bench.Synthesize(spec)
	if err != nil {
		b.Fatal(err)
	}
	m, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	model := nbti.DefaultModel()
	tcfg := thermal.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(d, m, model, tcfg); err != nil {
			b.Fatal(err)
		}
	}
}
