// Command floorviz renders the flow's artifacts as SVG files: stress maps
// before and after aging-aware re-mapping, the thermal maps, and one
// floorplan diagram per context.
//
//	floorviz -bench B13 -out /tmp/b13
//	floorviz -kernel fir16 -fabric 6x6 -out /tmp/fir
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/core"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/viz"
)

func main() {
	var (
		kernel = flag.String("kernel", "", "built-in kernel name")
		benchN = flag.String("bench", "", "Table-I benchmark name")
		fabric = flag.String("fabric", "8x8", "fabric WxH (kernels only)")
		outDir = flag.String("out", ".", "output directory for the SVG files")
	)
	flag.Parse()

	var (
		d   *arch.Design
		err error
	)
	switch {
	case *benchN != "":
		spec, ok := bench.SpecByName(*benchN)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *benchN))
		}
		d, err = bench.Synthesize(spec)
	case *kernel != "":
		mk, ok := dfg.Kernels[*kernel]
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		var w, h int
		if _, err := fmt.Sscanf(*fabric, "%dx%d", &w, &h); err != nil {
			fatal(err)
		}
		d, err = hls.BuildDesign(*kernel, mk(), arch.Fabric{W: w, H: h}, hls.DefaultConfig())
	default:
		fatal(fmt.Errorf("need -kernel or -bench"))
	}
	if err != nil {
		fatal(err)
	}

	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	r, err := core.Remap(context.Background(), d, m0, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	model, tcfg := nbti.DefaultModel(), thermal.DefaultConfig()
	before, err := core.Evaluate(d, m0, model, tcfg)
	if err != nil {
		fatal(err)
	}
	after, err := core.Evaluate(d, r.Mapping, model, tcfg)
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name, svg string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("stress_before.svg", viz.StressSVG(d.Name+" — aging-unaware stress", before.Stress))
	write("stress_after.svg", viz.StressSVG(d.Name+" — aging-aware stress", after.Stress))
	write("temp_before.svg", viz.HeatSVG(d.Name+" — temperature (K), baseline", before.Temp))
	write("temp_after.svg", viz.HeatSVG(d.Name+" — temperature (K), re-mapped", after.Temp))
	for c := 0; c < d.NumContexts; c++ {
		write(fmt.Sprintf("context_%02d_before.svg", c), viz.ContextSVG(d, m0, c))
		write(fmt.Sprintf("context_%02d_after.svg", c), viz.ContextSVG(d, r.Mapping, c))
	}
	fmt.Printf("MTTF increase %.2fx; CPD %.3f -> %.3f ns\n",
		after.Hours/before.Hours, r.OrigCPD, r.NewCPD)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floorviz:", err)
	os.Exit(1)
}
