// Command agingfloor runs the complete aging-aware floorplanning flow on
// one workload — a built-in kernel or a Table-I benchmark — and prints a
// human-readable report: stress maps before and after, timing, stress
// target, and the MTTF increase.
//
//	agingfloor -kernel fir16 -fabric 6x6
//	agingfloor -bench B14
//	agingfloor -src design.c -fabric 6x6
//	agingfloor -kernel dct8 -fabric 5x5 -mode freeze
//
// With -journal the run's flight-recorder journal (every MILP decision:
// probes, relaxations, rotations, pre-maps, prunes) is written as JSON;
// -explain renders the human-readable explainability report directly.
// A saved journal can be re-rendered offline at any time:
//
//	agingfloor -bench B14 -journal b14.journal.json -explain b14.report.txt
//	agingfloor explain b14.journal.json
//	agingfloor explain -json b14.journal.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/buildinfo"
	"agingfp/internal/core"
	"agingfp/internal/dfg"
	"agingfp/internal/flight"
	"agingfp/internal/frontend"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/obs"
	"agingfp/internal/place"
	"agingfp/internal/telemetry"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

// main delegates to run so deferred cleanup (trace flush, profile stop)
// survives the exit path — os.Exit skips defers.
func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "explain":
			os.Exit(runExplain(os.Args[2:]))
		case "submit":
			os.Exit(runSubmit(os.Args[2:]))
		case "delta":
			os.Exit(runDelta(os.Args[2:]))
		}
	}
	os.Exit(run())
}

// runExplain renders a previously saved flight journal (-journal) as a
// report, without re-running any solve.
func runExplain(args []string) int {
	fs := flag.NewFlagSet("agingfloor explain", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the report as deterministic JSON instead of text")
	svgF := fs.String("svg", "", "also write the per-PE stress-attribution heatmap SVG to this file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: agingfloor explain [-json] [-svg file.svg] journal.json")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	journal, err := flight.ReadJournal(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rep := flight.BuildReport(journal)
	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		os.Stdout.Write(out) //nolint:errcheck
		fmt.Println()
	} else {
		fmt.Print(rep.Text())
	}
	if *svgF != "" {
		svg := rep.HeatmapSVG()
		if svg == "" {
			fmt.Fprintln(os.Stderr, "journal carries no stress attribution; no heatmap written")
			return 1
		}
		if err := os.WriteFile(*svgF, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "wrote stress heatmap to", *svgF)
	}
	return 0
}

func run() int {
	var (
		kernel    = flag.String("kernel", "", "built-in kernel (fir16, fir32, iir4, iir8, matmul3, matmul4, dct8, conv3x3, fft16, reduce32)")
		benchN    = flag.String("bench", "", "Table-I benchmark name (B1..B27)")
		srcF      = flag.String("src", "", "behavioral source file (C-like assignments) to compile")
		fabric    = flag.String("fabric", "8x8", "fabric WxH (kernels only)")
		mode      = flag.String("mode", "rotate", "re-mapping mode: freeze or rotate")
		seed      = flag.Int64("seed", 1, "random seed")
		debug     = flag.Bool("debug", false, "trace Algorithm 1 on stdout (human-readable span log)")
		warmH     = flag.Bool("warm-heuristics", false, "reuse simplex bases inside the LP-rounding heuristics (faster; floorplans may differ from cold runs)")
		save      = flag.String("save", "", "write the design + both floorplans as JSON to this file")
		traceF    = flag.String("trace", "", "write a JSONL span trace (one event per span) to this file")
		metricsF  = flag.String("metrics", "", "write a Prometheus text-format metrics snapshot to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (phases carried as pprof labels)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		timeLimit = flag.Duration("time-limit", 0, "wall-clock budget per ST_target probe (0 keeps the default)")
		progress  = flag.Bool("progress", false, "render a live solver status line on stderr while the flow runs")
		journalF  = flag.String("journal", "", "write the solve's flight-recorder journal (JSON) to this file")
		explainF  = flag.String("explain", "", "write the human-readable explainability report to this file")
		flightEvs = flag.Int("flight-events", 0, "bound the flight journal's event count (0 = default, negative disables recording)")
		kernProfF = flag.String("kernel-profile", "", "arm the LP kernel profiler and write the aggregated kernel profile (phase times, basis health, tree shape) as JSON to this file")
		telemDir  = flag.String("telemetry-dir", "", "append this run's wide telemetry event to the durable store in this directory (shared with agingfloord)")
		version   = flag.Bool("version", false, "print build identity (VCS revision, Go version) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return 0
	}

	// Observability plumbing: the tracer fans out to the requested sinks
	// and carries the metrics registry the -metrics snapshot reads.
	var sinks []obs.Sink
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		js := obs.NewJSONLSink(f)
		defer func() {
			js.Close()
			f.Close()
			fmt.Println("wrote span trace to", *traceF)
		}()
		sinks = append(sinks, js)
	}
	if *debug {
		sinks = append(sinks, obs.NewDebugSink(os.Stdout))
	}
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if len(sinks) > 0 || *metricsF != "" {
		tracer = obs.New(sinks...).WithMetrics(reg)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Println("wrote CPU profile to", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
			fmt.Println("wrote heap profile to", *memProf)
		}()
	}

	d, err := buildDesign(*kernel, *benchN, *srcF, *fabric)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("design %s: %d ops, %d contexts, fabric %v, utilization %.0f%%\n",
		d.Name, d.NumOps(), d.NumContexts, d.Fabric, 100*d.UtilizationRate())

	// Ctrl-C / SIGTERM cancel the flow cooperatively: the solver layers
	// poll the context and return promptly with a partial result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var m0 arch.Mapping
	pprof.Do(ctx, pprof.Labels("phase", "place"), func(context.Context) {
		m0, err = place.Place(d, place.DefaultConfig())
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		return 1
	}
	res0 := timing.Analyze(d, m0)
	s0 := arch.ComputeStress(d, m0)
	fmt.Printf("\naging-unaware floorplan: CPD %.3f ns (clock %.1f ns), max stress %.3f, mean %.3f\n",
		res0.CPD, d.ClockPeriodNs, s0.Max(), s0.Mean())
	fmt.Println("accumulated stress map:")
	fmt.Print(arch.RenderStress(s0))

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Debug = *debug
	opts.WarmHeuristics = *warmH
	opts.Trace = tracer
	switch *mode {
	case "freeze":
		opts.Mode = core.Freeze
	case "rotate":
		opts.Mode = core.Rotate
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		return 2
	}
	if *timeLimit != 0 {
		opts.TimeLimit = *timeLimit
	}
	// Flight recorder: only attached when an output was requested, so the
	// default path journals nothing.
	var rec *flight.Recorder
	if (*journalF != "" || *explainF != "" || *kernProfF != "") && *flightEvs >= 0 {
		rec = flight.NewRecorder(*flightEvs)
		if *kernProfF != "" {
			rec.EnableKernel(0)
		}
		opts.Flight = rec
	}
	// Reject nonsense flag combinations with the library's own
	// diagnostics before any work is queued.
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Live status line: a context-carried reporter collects solver
	// progress, and a goroutine repaints one stderr line from it until
	// the flow returns.
	remapCtx := ctx
	stopProgress := func() {}
	if *progress {
		rep := obs.NewReporter()
		remapCtx = obs.WithReporter(ctx, rep)
		stopProgress = startProgressLine(rep, os.Stderr)
	}

	start := time.Now()
	var r *core.Result
	pprof.Do(ctx, pprof.Labels("phase", "remap"), func(context.Context) {
		r, err = core.Remap(remapCtx, d, m0, opts)
	})
	stopProgress()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "remap: interrupted (partial statistics follow)")
		fmt.Fprintf(os.Stderr, "solver effort so far: %d LP solves, %d simplex iterations, %d ST probes\n",
			r.Stats.LPSolves, r.Stats.SimplexIters, r.Stats.STProbes)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "remap: %v\n", err)
		return 1
	}
	s1 := arch.ComputeStress(d, r.Mapping)
	fmt.Printf("\naging-aware floorplan (%v, %v): ST_target %.3f (lower bound %.3f)\n",
		opts.Mode, time.Since(start).Round(time.Millisecond), r.STTarget, r.STLowerBound)
	if r.FallbackToFreeze {
		fmt.Println("note: rotation found nothing better; the Freeze floorplan was substituted")
	}
	fmt.Printf("max stress %.3f -> %.3f, CPD %.3f -> %.3f ns\n",
		r.OrigMaxStress, r.NewMaxStress, r.OrigCPD, r.NewCPD)
	fmt.Println("re-mapped stress map:")
	fmt.Print(arch.RenderStress(s1))

	var ratio float64
	var before *core.MTTFReport
	pprof.Do(ctx, pprof.Labels("phase", "evaluate"), func(context.Context) {
		ratio, err = core.MTTFIncrease(d, m0, r.Mapping, nbti.DefaultModel(), thermal.DefaultConfig())
		if err == nil {
			before, _ = core.Evaluate(d, m0, nbti.DefaultModel(), thermal.DefaultConfig())
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mttf: %v\n", err)
		return 1
	}
	fmt.Printf("\nMTTF: %.2f years -> %.2f years  (increase %.2fx)\n",
		before.Hours/8760, before.Hours*ratio/8760, ratio)
	fmt.Printf("solver effort: %d LP solves, %d ILP solves, %d B&B nodes, %d ST probes\n",
		r.Stats.LPSolves, r.Stats.ILPSolves, r.Stats.ILPNodes, r.Stats.STProbes)
	fmt.Printf("simplex: %d iterations, %d warm starts (%d rejected)\n",
		r.Stats.SimplexIters, r.Stats.WarmStarts, r.Stats.WarmStartRejects)
	fmt.Printf("phase wall-clock: step1 %v, rotate %v, step2 %v, timing %v (elapsed %v)\n",
		r.Stats.Step1Time.Round(time.Millisecond), r.Stats.RotateTime.Round(time.Millisecond),
		r.Stats.Step2Time.Round(time.Millisecond), r.Stats.TimingTime.Round(time.Millisecond),
		r.Stats.Elapsed.Round(time.Millisecond))

	// One wide event per run: the CLI feeds the same longitudinal store
	// agingfloord reads, so batch experiments and served jobs land in one
	// history. Best-effort — a telemetry problem never fails the solve.
	if *telemDir != "" {
		if p, err := telemetry.Open(telemetry.Config{Dir: *telemDir}); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		} else {
			ms := func(dur time.Duration) float64 { return float64(dur) / float64(time.Millisecond) }
			ev := &telemetry.SolveEvent{
				Time:          time.Now(),
				Source:        telemetry.SourceCLI,
				Bench:         d.Name,
				Ops:           d.NumOps(),
				Contexts:      d.NumContexts,
				Mode:          *mode,
				Status:        r.Status.String(),
				ElapsedMs:     ms(r.Stats.Elapsed),
				Step1Ms:       ms(r.Stats.Step1Time),
				RotateMs:      ms(r.Stats.RotateTime),
				Step2Ms:       ms(r.Stats.Step2Time),
				TimingMs:      ms(r.Stats.TimingTime),
				LPSolves:      r.Stats.LPSolves,
				SimplexIters:  r.Stats.SimplexIters,
				ILPNodes:      r.Stats.ILPNodes,
				STProbes:      r.Stats.STProbes,
				ProbeTimeouts: r.Stats.ProbeTimeouts,
				WarmStarts:    r.Stats.WarmStarts,
				WarmRejects:   r.Stats.WarmStartRejects,
			}
			ev.FillKernel(rec.KernelSnapshot())
			p.Record(ev)
			if err := p.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			} else {
				fmt.Println("recorded solve telemetry in", *telemDir)
			}
		}
	}

	if rec != nil {
		journal := rec.Snapshot()
		if *journalF != "" {
			f, err := os.Create(*journalF)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := journal.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				f.Close()
				return 1
			}
			f.Close()
			fmt.Println("wrote flight journal to", *journalF)
		}
		if *explainF != "" {
			rep := flight.BuildReport(journal)
			if err := os.WriteFile(*explainF, []byte(rep.Text()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println("wrote explainability report to", *explainF)
		}
		if *kernProfF != "" {
			out := struct {
				Kernel *flight.Kernel    `json:"kernel"`
				Tree   *flight.TreeStats `json:"tree,omitempty"`
			}{journal.Kernel, journal.Tree}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := os.WriteFile(*kernProfF, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("wrote kernel profile to %s (%.1f%% of LP wall-clock attributed to phases)\n",
				*kernProfF, 100*journal.Kernel.Coverage())
		}
	}

	if *metricsF != "" {
		f, err := os.Create(*metricsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := reg.WritePrometheus(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			f.Close()
			return 1
		}
		f.Close()
		fmt.Println("wrote metrics snapshot to", *metricsF)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		err = arch.WriteJSON(f, d, map[string]arch.Mapping{
			"baseline":    m0,
			"aging_aware": r.Mapping,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println("saved floorplans to", *save)
	}
	return 0
}

// startProgressLine repaints one carriage-return status line from the
// reporter's latest snapshot (200ms cadence, repainting only on news)
// until the returned stop function is called; stop clears the line and
// waits for the painter to exit so normal output never interleaves with
// a half-drawn line.
func startProgressLine(rep *obs.Reporter, w io.Writer) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		var lastSeq uint64
		for {
			select {
			case <-done:
				fmt.Fprint(w, "\r\033[K")
				return
			case <-tick.C:
			}
			p := rep.Latest()
			if p.Seq == lastSeq {
				continue
			}
			lastSeq = p.Seq
			line := fmt.Sprintf("phase %-6s", p.Phase)
			if p.STTarget > 0 {
				line += fmt.Sprintf("  ST %.3f", p.STTarget)
			}
			if p.STProbes > 0 {
				line += fmt.Sprintf("  probes %d", p.STProbes)
			}
			if p.RelaxRounds > 0 {
				line += fmt.Sprintf("  rounds %d", p.RelaxRounds)
			}
			if p.Batches > 0 {
				line += fmt.Sprintf("  batch %d/%d", p.Batch, p.Batches)
			}
			if p.LPSolves > 0 {
				line += fmt.Sprintf("  LP %d (%d iters)", p.LPSolves, p.SimplexIters)
			}
			if p.Nodes > 0 {
				line += fmt.Sprintf("  nodes %d", p.Nodes)
			}
			fmt.Fprintf(w, "\r\033[K%s", line)
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func buildDesign(kernel, benchName, srcFile, fabric string) (*arch.Design, error) {
	parseFabric := func() (arch.Fabric, error) {
		var w, h int
		if _, err := fmt.Sscanf(fabric, "%dx%d", &w, &h); err != nil {
			return arch.Fabric{}, fmt.Errorf("bad -fabric %q: %v", fabric, err)
		}
		return arch.Fabric{W: w, H: h}, nil
	}
	switch {
	case (kernel != "" && benchName != "") || (kernel != "" && srcFile != "") || (benchName != "" && srcFile != ""):
		return nil, fmt.Errorf("choose exactly one of -kernel, -bench, -src")
	case srcFile != "":
		src, err := os.ReadFile(srcFile)
		if err != nil {
			return nil, err
		}
		res, err := frontend.CompileSource(string(src))
		if err != nil {
			return nil, err
		}
		fmt.Printf("compiled %s: inputs %v, outputs %v\n", srcFile, res.Inputs, res.Outputs)
		f, err := parseFabric()
		if err != nil {
			return nil, err
		}
		return hls.BuildDesign(srcFile, res.Graph, f, hls.DefaultConfig())
	case benchName != "":
		spec, ok := bench.SpecByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (want B1..B27)", benchName)
		}
		return bench.Synthesize(spec)
	case kernel != "":
		mk, ok := dfg.Kernels[kernel]
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		f, err := parseFabric()
		if err != nil {
			return nil, err
		}
		return hls.BuildDesign(kernel, mk(), f, hls.DefaultConfig())
	default:
		return nil, fmt.Errorf("need -kernel, -bench, or -src")
	}
}
