// Command agingfloor runs the complete aging-aware floorplanning flow on
// one workload — a built-in kernel or a Table-I benchmark — and prints a
// human-readable report: stress maps before and after, timing, stress
// target, and the MTTF increase.
//
//	agingfloor -kernel fir16 -fabric 6x6
//	agingfloor -bench B14
//	agingfloor -src design.c -fabric 6x6
//	agingfloor -kernel dct8 -fabric 5x5 -mode freeze
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/core"
	"agingfp/internal/dfg"
	"agingfp/internal/frontend"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

func main() {
	var (
		kernel = flag.String("kernel", "", "built-in kernel (fir16, fir32, iir4, iir8, matmul3, matmul4, dct8, conv3x3, fft16, reduce32)")
		benchN = flag.String("bench", "", "Table-I benchmark name (B1..B27)")
		srcF   = flag.String("src", "", "behavioral source file (C-like assignments) to compile")
		fabric = flag.String("fabric", "8x8", "fabric WxH (kernels only)")
		mode   = flag.String("mode", "rotate", "re-mapping mode: freeze or rotate")
		seed   = flag.Int64("seed", 1, "random seed")
		debug  = flag.Bool("debug", false, "trace Algorithm 1")
		warmH  = flag.Bool("warm-heuristics", false, "reuse simplex bases inside the LP-rounding heuristics (faster; floorplans may differ from cold runs)")
		save   = flag.String("save", "", "write the design + both floorplans as JSON to this file")
	)
	flag.Parse()

	d, err := buildDesign(*kernel, *benchN, *srcF, *fabric)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("design %s: %d ops, %d contexts, fabric %v, utilization %.0f%%\n",
		d.Name, d.NumOps(), d.NumContexts, d.Fabric, 100*d.UtilizationRate())

	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		os.Exit(1)
	}
	res0 := timing.Analyze(d, m0)
	s0 := arch.ComputeStress(d, m0)
	fmt.Printf("\naging-unaware floorplan: CPD %.3f ns (clock %.1f ns), max stress %.3f, mean %.3f\n",
		res0.CPD, d.ClockPeriodNs, s0.Max(), s0.Mean())
	fmt.Println("accumulated stress map:")
	fmt.Print(arch.RenderStress(s0))

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Debug = *debug
	opts.WarmHeuristics = *warmH
	switch *mode {
	case "freeze":
		opts.Mode = core.Freeze
	case "rotate":
		opts.Mode = core.Rotate
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	start := time.Now()
	r, err := core.Remap(d, m0, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "remap: %v\n", err)
		os.Exit(1)
	}
	s1 := arch.ComputeStress(d, r.Mapping)
	fmt.Printf("\naging-aware floorplan (%v, %v): ST_target %.3f (lower bound %.3f)\n",
		opts.Mode, time.Since(start).Round(time.Millisecond), r.STTarget, r.STLowerBound)
	if r.FallbackToFreeze {
		fmt.Println("note: rotation found nothing better; the Freeze floorplan was substituted")
	}
	fmt.Printf("max stress %.3f -> %.3f, CPD %.3f -> %.3f ns\n",
		r.OrigMaxStress, r.NewMaxStress, r.OrigCPD, r.NewCPD)
	fmt.Println("re-mapped stress map:")
	fmt.Print(arch.RenderStress(s1))

	ratio, err := core.MTTFIncrease(d, m0, r.Mapping, nbti.DefaultModel(), thermal.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mttf: %v\n", err)
		os.Exit(1)
	}
	before, _ := core.Evaluate(d, m0, nbti.DefaultModel(), thermal.DefaultConfig())
	fmt.Printf("\nMTTF: %.2f years -> %.2f years  (increase %.2fx)\n",
		before.Hours/8760, before.Hours*ratio/8760, ratio)
	fmt.Printf("solver effort: %d LP solves, %d ILP solves, %d B&B nodes, %d ST probes\n",
		r.Stats.LPSolves, r.Stats.ILPSolves, r.Stats.ILPNodes, r.Stats.STProbes)
	fmt.Printf("simplex: %d iterations, %d warm starts (%d rejected)\n",
		r.Stats.SimplexIters, r.Stats.WarmStarts, r.Stats.WarmStartRejects)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		err = arch.WriteJSON(f, d, map[string]arch.Mapping{
			"baseline":    m0,
			"aging_aware": r.Mapping,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("saved floorplans to", *save)
	}
}

func buildDesign(kernel, benchName, srcFile, fabric string) (*arch.Design, error) {
	parseFabric := func() (arch.Fabric, error) {
		var w, h int
		if _, err := fmt.Sscanf(fabric, "%dx%d", &w, &h); err != nil {
			return arch.Fabric{}, fmt.Errorf("bad -fabric %q: %v", fabric, err)
		}
		return arch.Fabric{W: w, H: h}, nil
	}
	switch {
	case (kernel != "" && benchName != "") || (kernel != "" && srcFile != "") || (benchName != "" && srcFile != ""):
		return nil, fmt.Errorf("choose exactly one of -kernel, -bench, -src")
	case srcFile != "":
		src, err := os.ReadFile(srcFile)
		if err != nil {
			return nil, err
		}
		res, err := frontend.CompileSource(string(src))
		if err != nil {
			return nil, err
		}
		fmt.Printf("compiled %s: inputs %v, outputs %v\n", srcFile, res.Inputs, res.Outputs)
		f, err := parseFabric()
		if err != nil {
			return nil, err
		}
		return hls.BuildDesign(srcFile, res.Graph, f, hls.DefaultConfig())
	case benchName != "":
		spec, ok := bench.SpecByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (want B1..B27)", benchName)
		}
		return bench.Synthesize(spec)
	case kernel != "":
		mk, ok := dfg.Kernels[kernel]
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		f, err := parseFabric()
		if err != nil {
			return nil, err
		}
		return hls.BuildDesign(kernel, mk(), f, hls.DefaultConfig())
	default:
		return nil, fmt.Errorf("need -kernel, -bench, or -src")
	}
}
