package main

// Remote subcommands: agingfloor submit / agingfloor delta talk to a
// running agingfloord through the typed client (internal/serve/client)
// instead of re-running the solver locally.
//
//	agingfloor submit -bench B14
//	agingfloor submit -mode freeze design.json
//	agingfloor delta -base <job-id> design-v2.json
//
// Both wait for the job by default (-wait=false just prints the job ID)
// and report how the answer was produced — cold solve, exact or
// semantic cache hit, or a seeded delta re-solve — alongside the
// solver-effort statistics the warm path is supposed to shrink.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"agingfp/internal/arch"
	"agingfp/internal/serve"
	"agingfp/internal/serve/client"
)

// remoteFlags are the options submit and delta share.
type remoteFlags struct {
	server    string
	tenant    string
	mode      string
	seed      int64
	timeLimit int64
	deadline  int64
	wait      bool
	out       string
}

func addRemoteFlags(fs *flag.FlagSet, rf *remoteFlags) {
	fs.StringVar(&rf.server, "server", "http://localhost:8080", "agingfloord base URL")
	fs.StringVar(&rf.tenant, "tenant", "", "accounting identity to submit under (empty = anon)")
	fs.StringVar(&rf.mode, "mode", "", "re-mapping mode: freeze or rotate (empty = server default; delta inherits the base job's)")
	fs.Int64Var(&rf.seed, "seed", 0, "random seed (0 = server default; delta inherits the base job's)")
	fs.Int64Var(&rf.timeLimit, "time-limit-ms", 0, "wall-clock budget per ST_target probe in ms (0 = default)")
	fs.Int64Var(&rf.deadline, "deadline-ms", 0, "whole-job wall-clock bound in ms, queue wait included (0 = server default)")
	fs.BoolVar(&rf.wait, "wait", true, "wait for the job and print the outcome (false: print the job ID and return)")
	fs.StringVar(&rf.out, "out", "", "write the full result document (JSON) to this file")
}

// loadDocument reads a design document (the schema agingfloor -save
// writes) and validates it by round-tripping through the arch layer.
func loadDocument(path string) (*arch.Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc arch.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if _, _, err := arch.FromDocument(&doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// runSubmit posts one job (built-in benchmark or a design file).
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("agingfloor submit", flag.ExitOnError)
	var rf remoteFlags
	benchN := fs.String("bench", "", "submit a Table-I benchmark (B1..B27) instead of a design file")
	addRemoteFlags(fs, &rf)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: agingfloor submit [flags] design.json")
		fmt.Fprintln(os.Stderr, "       agingfloor submit [flags] -bench B14")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError

	req := &serve.JobRequest{
		Bench:       *benchN,
		Mode:        rf.mode,
		Seed:        rf.seed,
		TimeLimitMs: rf.timeLimit,
		DeadlineMs:  rf.deadline,
	}
	switch {
	case *benchN != "" && fs.NArg() > 0:
		fmt.Fprintln(os.Stderr, "choose one of -bench or a design file, not both")
		return 2
	case *benchN == "" && fs.NArg() != 1:
		fs.Usage()
		return 2
	case fs.NArg() == 1:
		doc, err := loadDocument(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		req.Design = doc
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cl := client.New(rf.server, nil)
	cl.Tenant = rf.tenant
	snap, err := cl.Submit(ctx, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		return 1
	}
	return finishRemote(ctx, cl, snap, rf)
}

// runDelta posts an incremental re-solve of a finished base job.
func runDelta(args []string) int {
	fs := flag.NewFlagSet("agingfloor delta", flag.ExitOnError)
	var rf remoteFlags
	baseID := fs.String("base", "", "finished base job ID to seed from (required)")
	addRemoteFlags(fs, &rf)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: agingfloor delta -base JOB [flags] design.json")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *baseID == "" || fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	doc, err := loadDocument(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cl := client.New(rf.server, nil)
	cl.Tenant = rf.tenant
	snap, err := cl.Delta(ctx, *baseID, &serve.DeltaRequest{
		Design:      doc,
		Mode:        rf.mode,
		Seed:        rf.seed,
		TimeLimitMs: rf.timeLimit,
		DeadlineMs:  rf.deadline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "delta:", err)
		return 1
	}
	return finishRemote(ctx, cl, snap, rf)
}

// finishRemote either prints the accepted job's ID (-wait=false) or
// waits for it and reports the outcome.
func finishRemote(ctx context.Context, cl *client.Client, snap serve.Snapshot, rf remoteFlags) int {
	fmt.Printf("job %s  state %s", snap.ID, snap.State)
	if snap.BaseJob != "" {
		fmt.Printf("  base %s", snap.BaseJob)
	}
	fmt.Println()
	if !rf.wait {
		return 0
	}
	final, err := cl.Wait(ctx, snap.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wait:", err)
		return 1
	}
	switch final.State {
	case serve.StateFailed:
		fmt.Fprintf(os.Stderr, "job %s failed: %s\n", final.ID, final.Error)
		return 1
	case serve.StateCanceled:
		fmt.Fprintf(os.Stderr, "job %s canceled\n", final.ID)
		return 1
	}

	// How the answer was produced is the headline for a caching/delta
	// API: cold, exact_hit, semantic_hit, or delta (seeded or fallen
	// back cold, with the reason).
	fmt.Printf("solve kind: %s", final.SolveKind)
	if final.DeltaFallback != "" {
		fmt.Printf("  (cold fallback: %s)", final.DeltaFallback)
	}
	if r := final.Reuse; r != nil {
		fmt.Printf("  [frozen reused %v, bases seeded %d, bracket hit %v]",
			r.FrozenReused, r.BasesSeeded, r.BracketHit)
	}
	fmt.Println()

	raw, res, err := cl.Result(ctx, final.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "result:", err)
		return 1
	}
	fmt.Printf("design %s: %d ops, %d contexts, status %s\n", res.Design, res.Ops, res.Contexts, res.Status)
	fmt.Printf("ST_target %.3f (lower bound %.3f), max stress %.3f -> %.3f, CPD %.3f -> %.3f ns\n",
		res.STTarget, res.STLower, res.OrigMaxStress, res.NewMaxStress, res.OrigCPDNs, res.NewCPDNs)
	fmt.Printf("MTTF %.2f years -> %.2f years (increase %.2fx)\n",
		res.MTTF.BeforeHours/8760, res.MTTF.AfterHours/8760, res.MTTF.Increase)
	fmt.Printf("solver effort: %d LP solves, %d simplex iterations, %d ST probes\n",
		res.Stats.LPSolves, res.Stats.SimplexIters, res.Stats.STProbes)
	// The cost block is delivery truth (what this job actually consumed,
	// wherever the answer came from), distinct from the result document's
	// request-deterministic stats.
	if c := final.Cost; c != nil {
		fmt.Printf("cost: tier %s, queue wait %.0f ms, solve %.0f ms", c.Tier, c.QueueWaitMs, c.SolveMs)
		if final.Tenant != "" {
			fmt.Printf("  (tenant %s)", final.Tenant)
		}
		fmt.Println()
		if len(c.PhaseMs) > 0 {
			fmt.Printf("kernel phases:")
			for _, name := range sortedPhaseNames(c.PhaseMs) {
				fmt.Printf(" %s %.1fms", name, c.PhaseMs[name])
			}
			fmt.Println()
		}
	}
	if rf.out != "" {
		if err := os.WriteFile(rf.out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println("wrote result to", rf.out)
	}
	return 0
}

func sortedPhaseNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
