// Command agingfloord hosts the aging-aware floorplanner as a
// long-running HTTP/JSON job service. Clients submit a design (or a
// Table-I benchmark name), poll the job, and fetch the result document;
// identical submissions are answered from a content-addressed cache
// byte-identically.
//
//	agingfloord -addr :8080 -workers 2
//	curl -d '{"bench":"B1"}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/result
//
// SIGTERM (or Ctrl-C) drains gracefully: intake stops with 503, queued
// and running jobs finish (bounded by -drain-timeout), then the process
// exits. A second signal force-cancels in-flight solves cooperatively.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agingfp/internal/obs"
	"agingfp/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "solver worker pool size")
		queueDepth   = flag.Int("queue", 16, "job queue depth (further submissions get 503)")
		cacheSize    = flag.Int("cache", 64, "content-addressed result cache entries")
		deadline     = flag.Duration("default-deadline", 0, "default per-job deadline, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before force-canceling")
		debug        = flag.Bool("debug", false, "trace solver spans on stdout")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *debug {
		tracer = obs.New(obs.NewDebugSink(os.Stdout))
	}
	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheSize,
		DefaultDeadline: *deadline,
		DrainTimeout:    *drainTimeout,
		Trace:           tracer,
		Registry:        reg,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("agingfloord listening on %s (%d workers, queue %d)\n", *addr, *workers, *queueDepth)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Println("agingfloord: draining (queued and running jobs will finish)")

	// Stop intake and finish the backlog, then close the listener. The
	// HTTP shutdown gets a grace period past the job drain so result
	// polls in flight complete.
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "agingfloord: shutdown: %v\n", err)
		return 1
	}
	fmt.Println("agingfloord: drained cleanly")
	return 0
}
