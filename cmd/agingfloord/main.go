// Command agingfloord hosts the aging-aware floorplanner as a
// long-running HTTP/JSON job service. Clients submit a design (or a
// Table-I benchmark name), poll the job, and fetch the result document;
// identical submissions are answered from a content-addressed cache
// byte-identically.
//
//	agingfloord -addr :8080 -workers 2
//	curl -d '{"bench":"B1"}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/v1/jobs/job-000001/result
//	curl localhost:8080/v1/jobs/job-000001/progress
//	curl -N localhost:8080/v1/jobs/job-000001/events
//
// Every request and job-lifecycle event is logged to stderr with the
// job's trace_id (-log-format selects text or JSON records); -trace
// writes the span stream as JSONL, -trace-jobs additionally keeps a
// bounded per-job copy behind GET /v1/jobs/{id}/trace, and -pprof
// mounts the runtime profiles under /debug/pprof/.
//
// -telemetry-dir enables the longitudinal telemetry pipeline: one
// durable wide event per job, windowed percentiles behind GET
// /v1/stats, the operator dashboard at GET /debug/dash, drift detection
// against -telemetry-baseline, and automatic flight-journal capture of
// slow-outlier solves (-slow-percentile) under <dir>/slow/.
//
// SIGTERM (or Ctrl-C) drains gracefully: intake stops with 503, queued
// and running jobs finish (bounded by -drain-timeout), buffered trace
// sinks are flushed, then the process exits. A second signal
// force-cancels in-flight solves cooperatively.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agingfp/internal/bench"
	"agingfp/internal/buildinfo"
	"agingfp/internal/obs"
	"agingfp/internal/serve"
	"agingfp/internal/slo"
	"agingfp/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "solver worker pool size")
		queueDepth   = flag.Int("queue", 16, "job queue depth (further submissions get 503)")
		cacheSize    = flag.Int("cache", 64, "content-addressed result cache entries")
		deadline     = flag.Duration("default-deadline", 0, "default per-job deadline, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before force-canceling")
		debug        = flag.Bool("debug", false, "trace solver spans on stdout")
		tracePath    = flag.String("trace", "", "write the span stream as JSON Lines to this file")
		traceJobs    = flag.Bool("trace-jobs", false, "keep a bounded per-job span trace behind GET /v1/jobs/{id}/trace")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logFormat    = flag.String("log-format", "text", "request/lifecycle log format: text or json")
		quietLog     = flag.Bool("no-log", false, "disable request and lifecycle logging")
		flightEvs    = flag.Int("flight-events", 0, "bound each job's flight journal (0 = default, negative disables GET /v1/jobs/{id}/report)")
		telemDir     = flag.String("telemetry-dir", "", "durable solve-telemetry directory; enables GET /v1/stats and GET /debug/dash (empty disables)")
		telemBase    = flag.String("telemetry-baseline", "", "perf baseline JSON (e.g. BENCH_baseline.json) to arm drift detection against")
		driftFactor  = flag.Float64("drift-factor", 2.0, "tolerated slowdown factor before a benchmark is flagged as drifted (mirrors CI's perf gate)")
		slowPct      = flag.Float64("slow-percentile", 0.99, "auto-capture the flight journal of solves beyond this latency percentile of their shape bucket (<=0 disables)")
		kernelProf   = flag.Bool("kernel-profile", false, "arm the LP kernel profiler on every job: phase-attributed solver time in journals, reports, metrics, /v1/stats, and /debug/dash")
		profRingDir  = flag.String("profile-ring", "", "continuous CPU profiling: keep rolling fixed-window pprof captures in this directory (empty disables)")
		profWindow   = flag.Duration("profile-window", 30*time.Second, "length of one continuous-profiling capture window")
		profKeep     = flag.Int("profile-keep", 8, "rolling pprof captures kept on disk (oldest pruned; slow-solve copies are kept separately)")
		tenantCap    = flag.Int("tenant-cap", 0, "distinct tenant labels in metrics/telemetry before rollup into \"other\" (0 = default 32)")
		sloOn        = flag.Bool("slo", true, "run the SLO engine behind GET /v1/slo (requires -telemetry-dir)")
		sloAvail     = flag.Float64("slo-availability", 0.99, "availability objective: target fraction of non-canceled jobs that do not fail")
		sloLatFactor = flag.Float64("slo-latency-factor", 4.0, "latency objectives: P90 under (baseline worst elapsed x this factor) per shape bucket (needs -telemetry-baseline)")
		version      = flag.Bool("version", false, "print build identity (VCS revision, Go version) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return 0
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "agingfloord: unknown -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	if *quietLog {
		logger = nil
	}

	reg := obs.NewRegistry()
	var sinks []obs.Sink
	if *debug {
		sinks = append(sinks, obs.NewDebugSink(os.Stdout))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
			return 1
		}
		js := obs.NewJSONLSink(f)
		// Drain flushes the sink; closing here catches the error-return
		// paths below too.
		defer func() {
			js.Close() //nolint:errcheck
			f.Close()  //nolint:errcheck
		}()
		sinks = append(sinks, js)
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.New(sinks...)
	}

	// Telemetry is strictly additive: with no -telemetry-dir the pipeline
	// stays nil and the server pays nothing per job (the stats/dash
	// routes answer 404).
	var (
		pipeline  *telemetry.Pipeline
		sloEngine *slo.Engine
	)
	if *telemDir != "" {
		tcfg := telemetry.Config{
			Dir:            *telemDir,
			DriftFactor:    *driftFactor,
			SlowPercentile: *slowPct,
			TenantCap:      *tenantCap,
			Registry:       reg,
			Logger:         logger,
		}
		if *slowPct <= 0 {
			tcfg.SlowPercentile = -1 // zero means "default"; force off
		}
		if *telemBase != "" {
			f, err := os.Open(*telemBase)
			if err != nil {
				fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
				return 1
			}
			base, err := bench.ReadPerfReport(f)
			f.Close() //nolint:errcheck // read-only
			if err != nil {
				fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
				return 1
			}
			tcfg.Baseline = base
		}
		// The SLO engine must exist before Open: it subscribes through the
		// observer hook, and Open replays the durable event history through
		// the same hook — that replay is what lets error budgets survive a
		// restart. The latency objectives are seeded from the same perf
		// baseline drift detection uses (none without -telemetry-baseline).
		if *sloOn {
			sloEngine = slo.New(
				slo.DefaultObjectives(*sloAvail, tcfg.Baseline, *sloLatFactor),
				slo.Config{Registry: reg, Logger: logger},
			)
			tcfg.Observers = append(tcfg.Observers, sloEngine.Record)
		}
		p, err := telemetry.Open(tcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
			return 1
		}
		pipeline = p
		defer pipeline.Close() //nolint:errcheck // drain already flushed jobs
	}

	// The continuous profiler rides next to telemetry: rolling CPU
	// captures, with the window covering a slow-outlier solve copied
	// aside under the job's id (next to its captured flight journal).
	var ring *telemetry.ProfRing
	if *profRingDir != "" {
		r, err := telemetry.StartProfRing(telemetry.RingConfig{
			Dir:    *profRingDir,
			Window: *profWindow,
			Keep:   *profKeep,
			Logger: logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
			return 1
		}
		ring = r
		defer ring.Close()
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheSize,
		DefaultDeadline: *deadline,
		DrainTimeout:    *drainTimeout,
		Trace:           tracer,
		Registry:        reg,
		Logger:          logger,
		CaptureTraces:   *traceJobs,
		EnablePprof:     *pprofOn,
		FlightEvents:    *flightEvs,
		Telemetry:       pipeline,
		KernelProfile:   *kernelProf,
		ProfileRing:     ring,
		SLO:             sloEngine,
		TenantCap:       *tenantCap,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("agingfloord listening on %s (%d workers, queue %d)\n", *addr, *workers, *queueDepth)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "agingfloord: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Println("agingfloord: draining (queued and running jobs will finish)")

	// Stop intake and finish the backlog (Drain also flushes buffered
	// trace sinks), then close the listener. The HTTP shutdown gets a
	// grace period past the job drain so result polls in flight complete.
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "agingfloord: shutdown: %v\n", err)
		return 1
	}
	fmt.Println("agingfloord: drained cleanly")
	return 0
}
