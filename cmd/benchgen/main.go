// Command benchgen inspects the synthetic Table-I benchmark suite:
// per-benchmark workload statistics, per-context op counts, and
// (optionally) the generated DFG edges.
//
//	benchgen                 summary of all 27 benchmarks
//	benchgen -bench B14      details of one benchmark
//	benchgen -bench B14 -dot DFG in Graphviz dot format
package main

import (
	"flag"
	"fmt"
	"os"

	"agingfp/internal/bench"
	"agingfp/internal/dfg"
)

func main() {
	var (
		name = flag.String("bench", "", "benchmark name (B1..B27); empty = summary of all")
		dot  = flag.Bool("dot", false, "emit the DFG as Graphviz dot")
	)
	flag.Parse()

	if *name == "" {
		fmt.Printf("%-5s %4s %-7s %6s %6s %5s %7s %7s\n",
			"name", "ctx", "fabric", "ops", "edges", "util", "ALU", "DMU")
		for _, s := range bench.TableI {
			d, err := bench.Synthesize(s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", s.Name, err)
				os.Exit(1)
			}
			st := d.Graph.Stat()
			fmt.Printf("%-5s %4d %-7v %6d %6d %5.2f %7d %7d\n",
				s.Name, s.Contexts, s.Fabric, d.NumOps(), st.Edges, s.Utilization(),
				st.ALUOps, st.DMUOps)
		}
		return
	}

	spec, ok := bench.SpecByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *name)
		os.Exit(2)
	}
	d, err := bench.Synthesize(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *dot {
		fmt.Printf("digraph %s {\n  rankdir=LR;\n", spec.Name)
		for _, op := range d.Graph.Ops {
			shape := "ellipse"
			if op.Kind == dfg.DMU {
				shape = "box"
			}
			fmt.Printf("  n%d [label=\"%s\\nctx%d\" shape=%s];\n", op.ID, op.Name, d.Ctx[op.ID], shape)
		}
		for _, e := range d.Graph.SortedEdges() {
			style := "solid"
			if d.Ctx[e.From] != d.Ctx[e.To] {
				style = "dashed" // registered
			}
			fmt.Printf("  n%d -> n%d [style=%s];\n", e.From, e.To, style)
		}
		fmt.Println("}")
		return
	}

	st := d.Graph.Stat()
	fmt.Printf("%s: %d contexts on %v (%d PEs), %d ops (%d ALU / %d DMU), %d edges, utilization %.2f\n",
		spec.Name, spec.Contexts, spec.Fabric, spec.Fabric.NumPEs(),
		d.NumOps(), st.ALUOps, st.DMUOps, st.Edges, spec.Utilization())
	fmt.Printf("paper MTTF increase: freeze %.2fx rotate %.2fx\n\n", spec.PaperFreeze, spec.PaperRotate)
	for c := 0; c < d.NumContexts; c++ {
		ops := d.ContextOps(c)
		intra := len(d.IntraEdges(c))
		fmt.Printf("  context %2d: %3d ops, %3d chained edges\n", c, len(ops), intra)
	}
}
