// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite:
//
//	experiments -table1          Table I (MTTF increase, Freeze & Rotate)
//	experiments -fig5            Fig. 5 (MTTF increase by configuration)
//	experiments -fig2b           Fig. 2(b) (Vth shift trajectories)
//	experiments -scaling         E4: monolithic ILP vs two-step MILP
//	experiments -greedy          E7: delay-unaware LPT vs delay-aware MILP
//	experiments -all             everything above
//
// -scale controls the linear shrink applied to the 16x16 rows (default
// 0.5, i.e. they run as 8x8 with proportionally fewer ops, preserving
// context counts and utilization bands). -scale 1 runs the full paper
// sizes; budget hours on one core.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"agingfp/internal/bench"
	"agingfp/internal/buildinfo"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "regenerate Table I")
		fig5    = flag.Bool("fig5", false, "regenerate Fig. 5")
		fig2b   = flag.Bool("fig2b", false, "regenerate Fig. 2(b)")
		scaling = flag.Bool("scaling", false, "run the E4 ILP-scaling comparison")
		greedy  = flag.Bool("greedy", false, "run the E7 greedy-vs-MILP comparison")
		budget  = flag.Bool("budget", false, "run the E8 delay-budget ablation (CPD vs clock)")
		wear    = flag.Bool("wear", false, "run the E9 wear-rotation schedule experiment")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.5, "linear shrink for 16x16 benchmarks (1 = full size)")
		subset  = flag.String("subset", "", "comma-separated benchmark names (e.g. B1,B14); empty = all 27")
		quiet   = flag.Bool("q", false, "suppress per-benchmark progress")
		csvOut  = flag.String("csv", "", "also write Table-I results as CSV to this file")
		par     = flag.Int("parallel", 1, "run this many benchmarks concurrently")

		kernProf   = flag.Bool("kernel-profile", false, "arm the LP kernel profiler per benchmark; phase medians land in the perf report")
		perfOut    = flag.String("perf", "", "write a perf trajectory report (per-benchmark phase wall-clock, simplex iterations, warm-start hits) as JSON to this file")
		perfBase   = flag.String("perf-baseline", "", "compare the perf run against this baseline report and fail on a median solve-time regression")
		perfFactor = flag.Float64("perf-factor", 2.0, "tolerated median solve-time factor vs the baseline")
		version    = flag.Bool("version", false, "print build identity (VCS revision, Go version) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	perfRun := *perfOut != "" || *perfBase != ""
	if !*table1 && !*fig5 && !*fig2b && !*scaling && !*greedy && !*budget && !*wear && !*all && !perfRun {
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Parallel = *par
	cfg.KernelProfile = *kernProf
	if !*quiet {
		cfg.Progress = func(s string) { fmt.Println(s) }
	}

	specs := bench.TableI
	if *subset != "" {
		specs = nil
		for _, name := range strings.Split(*subset, ",") {
			s, ok := bench.SpecByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}

	var results []*bench.Result
	runSuite := func() {
		if results != nil {
			return
		}
		start := time.Now()
		var err error
		results, err = bench.RunSuite(context.Background(), specs, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "suite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nsuite completed in %v\n\n", time.Since(start).Round(time.Second))
	}

	if perfRun {
		runSuite()
		suiteName := "all27"
		if *subset != "" {
			var names []string
			for _, s := range specs {
				names = append(names, s.Name)
			}
			suiteName = strings.Join(names, ",")
		}
		rep := bench.NewPerfReport(suiteName, results)
		if *perfOut != "" {
			f, err := os.Create(*perfOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				f.Close()
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote perf report to %s (median solve %.0fms over %d benchmarks)\n",
				*perfOut, rep.MedianSolveMs, len(rep.Records))
		}
		if *perfBase != "" {
			f, err := os.Open(*perfBase)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			base, err := bench.ReadPerfReport(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := bench.Compare(rep, base, *perfFactor); err != nil {
				fmt.Fprintf(os.Stderr, "perf regression gate: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("perf gate ok: median %.0fms vs baseline %.0fms, effort medians within %.1fx\n",
				rep.MedianSolveMs, base.MedianSolveMs, *perfFactor)
		}
	}
	if *table1 || *all {
		runSuite()
		fmt.Println("==== Table I — MTTF increase (measured vs paper) ====")
		fmt.Println(bench.FormatTableI(results))
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := bench.WriteCSV(f, results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Println("wrote", *csvOut)
		}
	}
	if *fig5 || *all {
		runSuite()
		fmt.Println("==== Fig. 5 ====")
		fmt.Println(bench.FormatFig5(results))
	}
	if *fig2b || *all {
		spec, _ := bench.SpecByName("B14")
		f, err := bench.RunFig2b(context.Background(), spec, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig2b: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("==== Fig. 2(b) ====")
		fmt.Println(bench.FormatFig2b(f))
	}
	if *scaling || *all {
		pts, err := bench.RunScaling(context.Background(), []int{24, 48, 72, 96}, 1200, 77)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("==== E4 — scaling ====")
		fmt.Println(bench.FormatScaling(pts))
	}
	if *greedy || *all {
		var rows []*bench.GreedyComparison
		for _, name := range []string{"B1", "B10", "B13", "B19"} {
			s, _ := bench.SpecByName(name)
			g, err := bench.RunGreedy(context.Background(), s, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "greedy: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, g)
		}
		fmt.Println("==== E7 — greedy vs MILP ====")
		fmt.Println(bench.FormatGreedy(rows))
	}
	if *budget || *all {
		var rows []*bench.BudgetAblation
		for _, name := range []string{"B1", "B10", "B13", "B19"} {
			s, _ := bench.SpecByName(name)
			ba, err := bench.RunBudgetAblation(context.Background(), s, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "budget: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, ba)
		}
		fmt.Println("==== E8 — delay-budget ablation ====")
		fmt.Println(bench.FormatBudgetAblation(rows))
	}
	if *wear || *all {
		var rows []*bench.WearResult
		for _, name := range []string{"B1", "B13"} {
			s, _ := bench.SpecByName(name)
			wr, err := bench.RunWear(context.Background(), s, cfg, 3)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wear: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, wr)
		}
		fmt.Println("==== E9 — wear-rotation schedules (extension) ====")
		fmt.Println(bench.FormatWear(rows))
	}
}
