// thermalmap: the thermal side of the story. Renders the steady-state
// temperature map of a benchmark before and after aging-aware re-mapping:
// the packed aging-unaware corner forms a hotspot; leveling stress also
// levels temperature, and the NBTI Arrhenius term turns every kelvin into
// lifetime.
//
//	go run ./examples/thermalmap
package main

import (
	"context"
	"fmt"
	"log"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/core"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
)

func main() {
	spec, _ := bench.SpecByName("B13") // 8 contexts, 4x4, medium usage
	d, err := bench.Synthesize(spec)
	if err != nil {
		log.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	model := nbti.DefaultModel()
	tcfg := thermal.DefaultConfig()

	before, err := core.Evaluate(d, m0, model, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %v: aging-unaware floorplan\n", spec.Name, spec.Fabric)
	fmt.Printf("stress map (max %.3f):\n%s", before.MaxStress, arch.RenderStress(before.Stress))
	fmt.Printf("temperature map (max %.2f K, ambient %.0f K):\n%s\n",
		before.MaxTempK, tcfg.AmbientK, arch.RenderHeat(before.Temp))

	r, err := core.Remap(context.Background(), d, m0, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, err := core.Evaluate(d, r.Mapping, model, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aging-aware floorplan")
	fmt.Printf("stress map (max %.3f):\n%s", after.MaxStress, arch.RenderStress(after.Stress))
	fmt.Printf("temperature map (max %.2f K):\n%s\n", after.MaxTempK, arch.RenderHeat(after.Temp))

	fmt.Printf("hotspot: %.2f K -> %.2f K\n", before.MaxTempK, after.MaxTempK)
	fmt.Printf("MTTF:    %.1f years -> %.1f years (%.2fx)\n",
		before.Hours/8760, after.Hours/8760, after.Hours/before.Hours)
	fmt.Printf("CPD:     %.3f ns -> %.3f ns (guaranteed not to increase)\n", r.OrigCPD, r.NewCPD)
}
