// Quickstart: the minimal end-to-end aging-aware floorplanning flow.
//
// It builds a small FIR-filter data-flow graph, schedules it into CGRRA
// contexts, places it with the aging-unaware baseline, re-maps it with
// the MILP-based aging-aware floorplanner, and reports the MTTF increase.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"agingfp/internal/arch"
	"agingfp/internal/core"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
)

func main() {
	// 1. A workload: a 16-tap FIR filter (16 multiplies + adder tree).
	g := dfg.FIR(16)

	// 2. HLS: schedule it into clock-cycle contexts on a 6x6 fabric.
	design, err := hls.BuildDesign("fir16", g, arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d ops into %d contexts\n", design.NumOps(), design.NumContexts)

	// 3. Baseline: the timing-driven, aging-UNAWARE floorplan.
	baseline, err := place.Place(design, place.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 4. The paper's contribution: delay- and aging-aware re-mapping.
	result, err := core.Remap(context.Background(), design, baseline, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max accumulated stress: %.3f -> %.3f (budget %.3f)\n",
		result.OrigMaxStress, result.NewMaxStress, result.STTarget)
	fmt.Printf("critical path delay:    %.3f -> %.3f ns (never increases)\n",
		result.OrigCPD, result.NewCPD)

	// 5. Reliability: NBTI MTTF before and after.
	ratio, err := core.MTTFIncrease(design, baseline, result.Mapping,
		nbti.DefaultModel(), thermal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTTF increase:          %.2fx\n", ratio)
}
