// sweep: the Fig. 5 intuition as a single-fabric experiment — MTTF
// increase versus fabric utilization. The lower the utilization (the more
// spare PEs), the more stress can be spread, the bigger the gain.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/core"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
)

func main() {
	fmt.Println("MTTF increase vs fabric utilization (6x6 fabric, 8 contexts)")
	fmt.Println()
	fmt.Println("util   ops   MTTF increase")
	for _, util := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		ops := int(util * 8 * 36)
		spec := bench.Spec{
			Name:     fmt.Sprintf("u%02.0f", util*100),
			Contexts: 8,
			Fabric:   arch.Fabric{W: 6, H: 6},
			TotalOps: ops,
			Seed:     int64(100 + ops),
		}
		d, err := bench.Synthesize(spec)
		if err != nil {
			log.Fatal(err)
		}
		m0, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.TimeLimit = 20 * time.Second // keep the demo brisk at high utilization
		r, err := core.Remap(context.Background(), d, m0, opts)
		if err != nil {
			log.Fatal(err)
		}
		ratio, err := core.MTTFIncrease(d, m0, r.Mapping, nbti.DefaultModel(), thermal.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(ratio*12))
		fmt.Printf("%.2f  %4d   %5.2fx %s\n", util, ops, ratio, bar)
	}
	fmt.Println("\n(The paper's Fig. 5 shows the same trend across 27 benchmarks:")
	fmt.Println(" low-utilization designs gain the most because spare PEs absorb stress.)")
}
