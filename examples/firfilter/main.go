// firfilter: a detailed walk through the flow on a 16-tap FIR filter,
// with ASCII stress maps, per-context occupancy, timing reports, and the
// Freeze-vs-Rotate comparison of Table I.
//
//	go run ./examples/firfilter
package main

import (
	"context"
	"fmt"
	"log"

	"agingfp/internal/arch"
	"agingfp/internal/core"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

func main() {
	g := dfg.FIR(16)
	st := g.Stat()
	fmt.Printf("FIR-16 DFG: %d ops (%d multiplies on the slow DMU, %d adds on the ALU), depth %d\n",
		st.Ops, st.DMUOps, st.ALUOps, st.Depth)

	design, err := hls.BuildDesign("fir16", g, arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled into %d contexts (200 MHz, operator chaining)\n\n", design.NumContexts)

	baseline, err := place.Place(design, place.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := timing.Analyze(design, baseline)
	fmt.Printf("baseline floorplan: CPD %.3f ns of the %.1f ns clock\n", res.CPD, design.ClockPeriodNs)
	for c := 0; c < design.NumContexts; c++ {
		fmt.Printf("context %d occupancy:\n%s", c, arch.RenderOccupancy(design, baseline, c))
	}
	s0 := arch.ComputeStress(design, baseline)
	fmt.Printf("accumulated stress (max %.3f, mean %.3f):\n%s\n", s0.Max(), s0.Mean(), arch.RenderStress(s0))

	model := nbti.DefaultModel()
	tcfg := thermal.DefaultConfig()
	before, err := core.Evaluate(design, baseline, model, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline MTTF: %.1f years (limiting PE %v at %.1f K)\n\n",
		before.Hours/8760, before.LimitingPE, before.Temp[before.LimitingPE.Y][before.LimitingPE.X])

	freeze, rotate, err := core.RemapBoth(context.Background(), design, baseline, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []struct {
		name string
		r    *core.Result
	}{{"freeze", freeze}, {"rotate (complete method)", rotate}} {
		after, err := core.Evaluate(design, v.r.Mapping, model, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: stress %.3f -> %.3f, CPD %.3f -> %.3f, MTTF %.1f years (%.2fx)\n",
			v.name, v.r.OrigMaxStress, v.r.NewMaxStress, v.r.OrigCPD, v.r.NewCPD,
			after.Hours/8760, after.Hours/before.Hours)
	}
	s1 := arch.ComputeStress(design, rotate.Mapping)
	fmt.Printf("\nre-mapped stress map:\n%s", arch.RenderStress(s1))
}
